#!/usr/bin/env python3
"""Whole-program lock-order and determinism-purity analyzer for the snapper
tree (`snapper_analyze`).

Two rule families, both whole-program (every file is parsed before any rule
runs, so cycles and call chains may span translation units):

Lock-order family
-----------------
  lock-order-cycle   The global lock-acquisition graph — built from every
                     `MutexLock l(&expr)` RAII site and every direct
                     `expr.Lock()` / `expr->Lock()` call across the tree,
                     including locks acquired by callees while a lock is
                     held (via a transitive call-graph summary) — contains a
                     cycle between lock *classes*. Reported at every edge
                     witness participating in the cycle, with the full
                     witness chain (who held what, where, and through which
                     calls). This is the static form of the PR-8
                     FaultInjectionEnv ABBA bug (`mu_` -> `FileRec::mu` in
                     NewWritableFile/DeleteFile/Crash against the write
                     path's `FileRec::mu` -> `mu_`).

  self-deadlock      The same lock expression is acquired twice in one
                     function scope with the first still held. snapper's
                     Mutex is non-recursive, so this blocks forever.
                     (Distinct expressions of the same lock class — e.g.
                     locking two accounts in ID order — are *not* flagged;
                     instance-level ordering belongs to the runtime tracker
                     in src/common/lock_tracker.h.)

  lock-across-await  A lock is held at a co_await. Beyond the UB that
                     scripts/coro_lint.py already rejects (unlock on a
                     foreign thread), a lock held across suspension is an
                     unordered edge against everything the resuming executor
                     may acquire — it can close a lock-order cycle that no
                     syntactic nesting shows. Shares the lock-scope engine
                     with the cycle rule.

Determinism-purity family (PACT paths must be deterministic)
------------------------------------------------------------
Functions transitively reachable from the PACT execution entry points —
`TransactionalActor` deterministic turn/execute paths, batch commit
(LocalSchedule / CommitSequencer), and the replayed state-digest sites —
must not consult ambient nondeterminism. Entry points are the built-in list
in PACT_ENTRY_QNAMES plus any function carrying a
`// snapper-analyze: pact-entry` marker. Reachability is name-based over
the whole-program call graph; each finding prints the entry-to-sink chain.

  nondet-clock          `*_clock::now()`, gettimeofday, clock_gettime, time()
  nondet-random         rand/srand/drand48/arc4random, std::random_device
  nondet-thread-id      std::this_thread::get_id, pthread_self, gettid
  nondet-unordered-iter iteration (range-for) over an unordered_map /
                        unordered_set: the traversal order is a function of
                        hashing and rehash history, which differs run to run
                        the moment pointers or seeds differ
  nondet-pointer        pointer-value laundering: reinterpret_cast to
                        uintptr_t/intptr_t, std::hash over a pointer type

Engine: the shared self-contained tokenizer in scripts/cpp_lexer.py — the
same toolchain as scripts/coro_lint.py. `--engine=libclang` is reserved for
an AST-precise backend and fails fast with guidance when the clang Python
bindings are absent (this container ships none, and nothing may be
installed); the syntactic engine is the supported, CI-enforced path.
compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS) is used for
translation-unit discovery when no explicit paths are given.

Suppressions:
  * inline: `// SNAPPER-ANALYZE-ALLOW(<rule>): <reason>` on the reported
    line or the comment block directly above it. The reason is mandatory —
    a bare allow is itself an error.
  * file-level: scripts/snapper_analyze_allow.txt entries of the form
    `<path-suffix>:<rule>[:<message-substring>]` (see that file's header).

Self-test: `--self-test <fixture-dir>` analyzes the fixture corpus as one
program and requires the reported (file, line, rule) set to exactly match
the `// EXPECT-ANALYZE: <rule>[,<rule>...]` markers. CTest runs this (label
`analyze`) plus a clean pass over src/.

Known over-approximations (all on the safe side, all suppressible):
  * virtual and overloaded calls resolve by name to every definition with
    that name;
  * calls through std::function / lambdas / function pointers are invisible
    (lambda bodies are analyzed as their own functions);
  * lock identity is the (class, member) pair, so instance-level order
    within one class is out of scope statically — the runtime tracker
    covers it by address.
"""

import argparse
import os
import re
import sys
from collections import defaultdict, deque

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from cpp_lexer import (  # noqa: E402
    Token,
    comment_allows,
    default_compile_commands,
    discover_files,
    is_lambda_introducer,
    lambda_body_range,
    match_paren,
    tokenize,
)

RULES = (
    "lock-order-cycle",
    "self-deadlock",
    "lock-across-await",
    "nondet-clock",
    "nondet-random",
    "nondet-thread-id",
    "nondet-unordered-iter",
    "nondet-pointer",
)

ALLOW_RE = re.compile(r"SNAPPER-ANALYZE-ALLOW\(([a-z\-,\s]+)\)(:?)\s*(.*)")
EXPECT_RE = re.compile(r"EXPECT-ANALYZE:\s*([a-z\-,\s]+)")
ENTRY_MARK_RE = re.compile(r"snapper-analyze:\s*pact-entry")
EXEMPT_MARK_RE = re.compile(r"snapper-analyze:\s*pact-exempt")

# Built-in PACT entry points (matched by `Class::Name` suffix). The inline
# `// snapper-analyze: pact-entry` marker extends this set, and is the only
# mechanism fixtures use.
PACT_ENTRY_QNAMES = {
    # Deterministic turn / execute path of the Snapper stack.
    "TransactionalActor::InvokePact",
    "TransactionalActor::ReceiveBatch",
    "TransactionalActor::ReceiveBatchCommit",
    # Batch commit: deterministic ordering decisions.
    "LocalSchedule::AddBatch",
    "LocalSchedule::Pump",
    "LocalSchedule::MarkBatchCommitted",
    "CommitSequencer::RegisterEmitted",
    "CommitSequencer::RequestCommit",
    "CommitSequencer::MarkCommitted",
}

KEYWORDS = {
    "if", "while", "for", "switch", "return", "co_return", "co_await",
    "co_yield", "sizeof", "alignof", "catch", "throw", "new", "delete",
    "case", "default", "do", "else", "goto", "static_assert", "decltype",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "assert", "defined", "alignas", "typeid", "noexcept",
}

SMART_PTRS = {"shared_ptr", "unique_ptr", "weak_ptr", "optional"}
UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset", "flat_hash_map", "flat_hash_set"}
CLOCK_FUNCS = {"gettimeofday", "clock_gettime", "timespec_get"}
RANDOM_FUNCS = {"rand", "srand", "drand48", "lrand48", "arc4random",
                "random_device"}
THREAD_ID_FUNCS = {"pthread_self", "gettid"}


class FunctionDef:
    __slots__ = ("qname", "cls", "name", "path", "line", "lo", "hi",
                 "file_tokens", "comments", "params")

    def __init__(self, qname, cls, name, path, line, lo, hi, file_tokens,
                 comments, params):
        self.qname = qname      # "Class::Name" or "Name"
        self.cls = cls          # enclosing class name or None
        self.name = name        # unqualified name
        self.path = path
        self.line = line        # line of the definition
        self.lo = lo            # body '{' index into file_tokens
        self.hi = hi            # matching '}' index
        self.file_tokens = file_tokens
        self.comments = comments
        self.params = params    # token list of the parameter list


class Program:
    """Whole-program model: every class, member, and function definition."""

    def __init__(self):
        self.functions = []               # [FunctionDef]
        self.by_name = defaultdict(list)  # unqualified name -> [FunctionDef]
        self.classes = set()              # every class/struct name seen
        # (class, member) facts:
        self.mutex_members = defaultdict(set)    # class -> {member}
        self.member_class = {}        # (class, member) -> core class name
        self.member_unordered = set()  # {(class, member)} unordered containers
        self.class_file_stem = defaultdict(set)  # class -> {file stems}
        self.file_comments = {}       # path -> comments dict
        self.file_tokens = {}         # path -> tokens


def file_stem(path):
    return os.path.splitext(os.path.basename(path))[0]


# ---------------------------------------------------------------------------
# Parsing: classes, members, function definitions
# ---------------------------------------------------------------------------

def _collect_member_decl(prog, cls, stmt):
    """`stmt` is a `;`-terminated class-scope statement (tokens, no `;`).
    Records mutex members, member core types, and unordered members."""
    if not stmt:
        return
    # Find the declared name: last ident before `=`, `{`, or GUARDED_BY.
    cut = len(stmt)
    for k, t in enumerate(stmt):
        if t.text in {"=", "{"} or t.text == "GUARDED_BY":
            cut = k
            break
    decl = stmt[:cut]
    if len(decl) < 2 or not decl[-1].is_ident:
        return
    name = decl[-1].text
    type_toks = decl[:-1]
    type_texts = [t.text for t in type_toks]
    if not type_toks:
        return
    if type_texts[-1] in {"*", "&"}:
        type_texts = type_texts[:-1]
    if "Mutex" in type_texts and type_texts[-1] == "Mutex":
        prog.mutex_members[cls].add(name)
        return
    if any(t in UNORDERED_TYPES for t in type_texts):
        prog.member_unordered.add((cls, name))
    # Core class: the last ident in the type that names a known class.
    prog.member_class[(cls, name)] = type_toks  # resolve lazily (pass 2)


def _resolve_member_cores(prog):
    resolved = {}
    for key, toks in prog.member_class.items():
        core = None
        for t in toks:
            if t.is_ident and t.text in prog.classes:
                core = t.text
        if core:
            resolved[key] = core
    prog.member_class = resolved


def parse_file(prog, path, tokens, comments):
    """Walks namespace/class scopes, collecting classes, members, and
    function definitions (bodies are skipped here and analyzed later)."""
    n = len(tokens)

    def walk(lo, hi, cls_stack):
        """[lo, hi) token range at namespace/class scope."""
        i = lo
        stmt_start = i  # class-scope statement accumulator
        while i < hi:
            t = tokens[i]
            text = t.text
            if text == ";":
                if cls_stack:
                    _collect_member_decl(prog, cls_stack[-1],
                                         tokens[stmt_start:i])
                i += 1
                stmt_start = i
                continue
            if text == "namespace":
                j = i + 1
                while j < hi and tokens[j].text not in {"{", ";", "="}:
                    j += 1
                if j < hi and tokens[j].text == "{":
                    close = match_paren(tokens, j, "{", "}")
                    walk(j + 1, close, cls_stack)
                    i = close + 1
                else:
                    i = j + 1
                stmt_start = i
                continue
            if text in {"class", "struct"} and (
                    i == 0 or tokens[i - 1].text != "enum"):
                name = None
                j = i + 1
                while j < hi:
                    tj = tokens[j].text
                    if tj == "(":
                        j = match_paren(tokens, j)
                    elif tj == "<":
                        j = match_paren(tokens, j, "<", ">")
                    elif tokens[j].is_ident and tj not in {"final", "alignas"}:
                        name = tj
                    if tj in {"{", ";", ":"}:
                        break
                    j += 1
                if j < hi and tokens[j].text == ":":  # base clause
                    while j < hi and tokens[j].text not in {"{", ";"}:
                        if tokens[j].text == "(":
                            j = match_paren(tokens, j)
                        j += 1
                if j < hi and tokens[j].text == "{" and name:
                    close = match_paren(tokens, j, "{", "}")
                    prog.classes.add(name)
                    prog.class_file_stem[name].add(file_stem(path))
                    walk(j + 1, close, cls_stack + [name])
                    i = close + 1
                else:
                    i = j + 1
                stmt_start = i
                continue
            if text == "enum":
                j = i + 1
                while j < hi and tokens[j].text not in {"{", ";"}:
                    j += 1
                if j < hi and tokens[j].text == "{":
                    i = match_paren(tokens, j, "{", "}") + 1
                else:
                    i = j + 1
                stmt_start = i
                continue
            if text == "{":
                # Stray block at namespace scope (e.g. extern "C") — recurse.
                close = match_paren(tokens, i, "{", "}")
                walk(i + 1, close, cls_stack)
                i = close + 1
                stmt_start = i
                continue
            # Function definition candidate: ident '(' ... ')' quals '{'.
            if t.is_ident and text not in KEYWORDS and i + 1 < hi \
                    and tokens[i + 1].text == "(":
                close = match_paren(tokens, i + 1)
                end = _after_signature(tokens, close + 1, hi)
                if end is not None:
                    body_close = match_paren(tokens, end, "{", "}")
                    name = text
                    cls = cls_stack[-1] if cls_stack else None
                    # Out-of-line definition: Class::Name( ... )
                    k = i - 1
                    quals = []
                    while k - 1 >= lo and tokens[k].text == "::" \
                            and tokens[k - 1].is_ident:
                        quals.append(tokens[k - 1].text)
                        k -= 2
                    if quals:
                        cls = quals[0]  # innermost qualifier
                    if k >= lo and tokens[k].text == "~":
                        name = "~" + name
                    qname = f"{cls}::{name}" if cls else name
                    fd = FunctionDef(qname, cls, name, path, t.line,
                                     end, body_close, tokens, comments,
                                     tokens[i + 2:close])
                    prog.functions.append(fd)
                    prog.by_name[name].append(fd)
                    i = body_close + 1
                    stmt_start = i
                    continue
            i += 1
        if cls_stack and stmt_start < hi:
            _collect_member_decl(prog, cls_stack[-1], tokens[stmt_start:hi])

    walk(0, n, [])


def _after_signature(tokens, j, hi):
    """j points just past the `)` of a parameter list. Returns the index of
    the body `{` if this is a function definition, else None (declaration,
    expression, etc.)."""
    guard = 0
    while j < hi and guard < 128:
        text = tokens[j].text
        if text == "{":
            return j
        if text in {";", "=", ",", ")", "]", "}"}:
            return None
        if text == ":":
            # Constructor initializer list: ident (expr|{expr}) [, ...] {
            j += 1
            while j < hi and guard < 512:
                guard += 1
                # skip the member name (possibly templated/qualified)
                while j < hi and (tokens[j].is_ident or
                                  tokens[j].text == "::"):
                    j += 1
                if j < hi and tokens[j].text == "<":
                    j = match_paren(tokens, j, "<", ">") + 1
                if j >= hi or tokens[j].text not in {"(", "{"}:
                    return None
                j = match_paren(tokens, j, tokens[j].text,
                                ")" if tokens[j].text == "(" else "}") + 1
                if j < hi and tokens[j].text == ",":
                    j += 1
                    continue
                return j if j < hi and tokens[j].text == "{" else None
            return None
        if text == "->":  # trailing return type
            j += 1
            continue
        if text == "(":
            j = match_paren(tokens, j) + 1
            continue
        if text == "<":
            j = match_paren(tokens, j, "<", ">") + 1
            continue
        if tokens[j].is_ident or text in {"&", "*", "::"}:
            j += 1  # const/noexcept/override/annotation macros/return type
            guard += 1
            continue
        return None
    return None


# ---------------------------------------------------------------------------
# Lock identity resolution
# ---------------------------------------------------------------------------

class LockResolver:
    """Resolves a lock expression (the tokens inside `&EXPR` or the receiver
    chain of `EXPR.Lock()`) to a lock class string "Class::member"."""

    def __init__(self, prog):
        self.prog = prog
        # member name -> [classes declaring a mutex member with that name]
        self.by_member = defaultdict(list)
        for cls, members in prog.mutex_members.items():
            for m in members:
                self.by_member[m].append(cls)

    def resolve(self, expr, func, local_types):
        """expr: token list; func: FunctionDef; local_types: name ->
        ('class', C) | ('iter', (class, member))."""
        prog = self.prog
        if not expr:
            return None
        member = expr[-1].text
        if member not in self.by_member:
            return None
        candidates = self.by_member[member]
        if len(expr) == 1:
            # Bare `mu_`: enclosing class first.
            if func.cls and member in prog.mutex_members.get(func.cls, ()):
                return f"{func.cls}::{member}"
            return self._fallback(member, candidates, func)
        # Receiver chain: first ident decides.
        head = expr[0].text
        binding = local_types.get(head)
        cls = None
        if binding is None and func.cls:
            # A member of the enclosing class?
            cls = prog.member_class.get((func.cls, head))
        elif binding is not None:
            kind, val = binding
            if kind == "class":
                cls = val
            elif kind == "iter":
                # it->second->mu / it->second.mu
                texts = [t.text for t in expr]
                if "second" in texts:
                    cls = prog.member_class.get(val)
        # One more hop: head.mid->mu (resolve mid through head's class).
        if cls is not None and len(expr) >= 5:
            mid = expr[2].text
            if mid != "second" and mid != member:
                cls = prog.member_class.get((cls, mid), cls)
        if cls is not None and member in prog.mutex_members.get(cls, ()):
            return f"{cls}::{member}"
        return self._fallback(member, candidates, func)

    def _fallback(self, member, candidates, func):
        if len(candidates) == 1:
            return f"{candidates[0]}::{member}"
        # Same-file-stem rule: fault_env.cc resolves `...->mu` to the class
        # declared in fault_env.h, not env.h's FileState.
        stem = file_stem(func.path)
        stem_hits = [c for c in candidates
                     if stem in self.prog.class_file_stem[c]]
        if len(stem_hits) == 1:
            return f"{stem_hits[0]}::{member}"
        return f"*::{member}"  # honest merge; runtime tracker disambiguates


# ---------------------------------------------------------------------------
# Function-body analysis: lock scopes, calls, blocklist sites
# ---------------------------------------------------------------------------

class BodyFacts:
    __slots__ = ("acquires", "edges", "held_calls", "calls", "await_holds",
                 "self_deadlocks", "blocklist", "unordered_iters")

    def __init__(self):
        self.acquires = []        # (lock, line, expr_text)
        self.edges = []           # (held_lock, held_line, lock, line)
        self.held_calls = []      # (held=[(lock, line)...], callee, line)
        self.calls = set()        # every callee name
        self.await_holds = []     # (lock, decl_line, await_line)
        self.self_deadlocks = []  # (expr_text, first_line, line)
        self.blocklist = []       # (rule, line, detail)
        self.unordered_iters = []  # (line, expr_text)


def _param_types(fd, prog):
    """name -> ('class', C) bindings from the parameter list."""
    out = {}
    params = fd.params
    # split at top-level commas
    parts, depth, cur = [], 0, []
    for t in params:
        if t.text in {"<", "(", "["}:
            depth += 1
        elif t.text in {">", ")", "]"}:
            depth -= 1
        if t.text == "," and depth == 0:
            parts.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        parts.append(cur)
    for part in parts:
        idents = [t for t in part if t.is_ident]
        if len(idents) < 2:
            continue
        name = idents[-1].text
        core = None
        for t in idents[:-1]:
            if t.text in prog.classes:
                core = t.text
        if core:
            out[name] = ("class", core)
    return out


def analyze_body(fd, prog, resolver):
    """Scans one function body (skipping nested lambda bodies, which are
    registered as their own FunctionDefs by the caller)."""
    tokens = fd.file_tokens
    facts = BodyFacts()
    local_types = _param_types(fd, prog)
    lambdas = []

    # scope stack: each entry is a list of RAII locks
    # [varname, lockclass, line, expr_text, released]
    scopes = [[]]
    # direct locks (expr.Lock()) held until Unlock or function end:
    direct = []  # [lockclass, line, expr_text]

    def held_now():
        held = []
        for scope in scopes:
            for v in scope:
                if not v[4] and v[1]:
                    held.append((v[1], v[2]))
        held.extend((d[0], d[1]) for d in direct)
        return held

    def on_acquire(lock, line, expr_text, blocking=True):
        if lock is None:
            return
        facts.acquires.append((lock, line, expr_text))
        for scope in scopes:
            for v in scope:
                if not v[4] and v[3] == expr_text and v[1] == lock:
                    facts.self_deadlocks.append((expr_text, v[2], line))
        if blocking:
            for held_lock, held_line in held_now():
                if held_lock != lock:
                    facts.edges.append((held_lock, held_line, lock, line))

    i, hi = fd.lo + 1, fd.hi
    while i < hi:
        t = tokens[i]
        text = t.text
        if text == "{":
            scopes.append([])
            i += 1
            continue
        if text == "}":
            if len(scopes) > 1:
                scopes.pop()
            i += 1
            continue
        if is_lambda_introducer(tokens, i):
            captures, lo, l_hi = lambda_body_range(tokens, i)
            if lo is not None:
                lambdas.append((i, lo, l_hi))
                i = l_hi + 1
                continue
            i += 1
            continue
        if text == "co_await":
            for lock, line in held_now():
                facts.await_holds.append((lock, line, t.line))
            i += 1
            continue
        if text == "MutexLock" and t.is_ident:
            # MutexLock name(&EXPR);
            j = i + 1
            if j < hi and tokens[j].is_ident and j + 1 < hi \
                    and tokens[j + 1].text == "(":
                var = tokens[j].text
                close = match_paren(tokens, j + 1)
                expr = tokens[j + 2:close]
                if expr and expr[0].text == "&":
                    expr = expr[1:]
                expr_text = "".join(x.text for x in expr)
                lock = resolver.resolve(expr, fd, local_types)
                on_acquire(lock, t.line, expr_text)
                scopes[-1].append([var, lock, t.line, expr_text, False])
                i = close + 1
                continue
        if t.is_ident and i + 2 < hi and tokens[i + 1].text in {".", "->"} \
                and tokens[i + 2].text in {"Lock", "Unlock", "TryLock",
                                           "lock", "unlock", "try_lock"} \
                and i + 3 < hi and tokens[i + 3].text == "(":
            method = tokens[i + 2].text
            # RAII var re-lock / unlock?
            raii = None
            for scope in scopes:
                for v in scope:
                    if v[0] == t.text:
                        raii = v
            if raii is not None:
                if method in {"Unlock", "unlock"}:
                    raii[4] = True
                else:
                    # Re-arm: check against currently-held state *before*
                    # marking the var held again, else `l.Unlock(); l.Lock()`
                    # reads as a self-deadlock.
                    on_acquire(raii[1], t.line, raii[3])
                    raii[4] = False
                i = match_paren(tokens, i + 3) + 1
                continue
            # Direct mutex method on an expression (receiver = chain ending
            # just before the `.`/`->`).
            k = i  # walk back over the chain start — here it's one ident,
            # but allow `a->b.mu.Lock()` chains by scanning forward instead.
            chain = [tokens[k]]
            expr_text = tokens[k].text
            lock = resolver.resolve(chain, fd, local_types)
            if method in {"Lock", "lock"}:
                on_acquire(lock, t.line, expr_text)
                if lock:
                    direct.append([lock, t.line, expr_text])
            elif method in {"TryLock", "try_lock"}:
                on_acquire(lock, t.line, expr_text, blocking=False)
                if lock:
                    direct.append([lock, t.line, expr_text])
            else:
                for d in list(direct):
                    if d[2] == expr_text:
                        direct.remove(d)
            i = match_paren(tokens, i + 3) + 1
            continue
        # Longer receiver chains: `a->b->mu.Lock()` / `rec->mu.Lock()`.
        if text in {".", "->"} and i + 1 < hi \
                and tokens[i + 1].text in {"Lock", "Unlock", "TryLock"} \
                and i + 2 < hi and tokens[i + 2].text == "(":
            # collect chain backwards: ident ((.|->) ident)*
            chain = []
            k = i - 1
            while k >= fd.lo and tokens[k].is_ident:
                chain.insert(0, tokens[k])
                if k - 1 >= fd.lo and tokens[k - 1].text in {".", "->"}:
                    chain.insert(0, tokens[k - 1])
                    k -= 2
                else:
                    break
            method = tokens[i + 1].text
            expr_text = "".join(x.text for x in chain)
            lock = resolver.resolve(
                [x for x in chain if x.is_ident], fd, local_types)
            if method == "Lock":
                on_acquire(lock, t.line, expr_text)
                if lock:
                    direct.append([lock, t.line, expr_text])
            elif method == "TryLock":
                on_acquire(lock, t.line, expr_text, blocking=False)
                if lock:
                    direct.append([lock, t.line, expr_text])
            else:
                for d in list(direct):
                    if d[2] == expr_text:
                        direct.remove(d)
            i = match_paren(tokens, i + 2) + 1
            continue
        # Local declarations that bind a class (for receiver resolution).
        if t.is_ident:
            _maybe_local_decl(tokens, i, hi, prog, local_types)
            # Range-for over an unordered container?
            if text == "for" and i + 1 < hi and tokens[i + 1].text == "(":
                close = match_paren(tokens, i + 1)
                inner = tokens[i + 2:close]
                _scan_range_for(inner, fd, prog, local_types, facts)
            # Call site?
            if i + 1 < hi and tokens[i + 1].text == "(" \
                    and text not in KEYWORDS:
                facts.calls.add(text)
                held = held_now()
                if held:
                    facts.held_calls.append((list(held), text, t.line))
        _scan_blocklist(tokens, i, hi, facts)
        i += 1

    return facts, lambdas


def _maybe_local_decl(tokens, i, hi, prog, local_types):
    """Recognizes a handful of declaration shapes that bind a local name to
    a class: `C x` / `C* x` / `C& x` / `smart_ptr<C> x` /
    `auto x = make_shared<C>(...)` / `auto it = member.find(...)`."""
    t = tokens[i]
    if t.text in prog.classes:
        j = i + 1
        while j < hi and tokens[j].text in {"*", "&", "const"}:
            j += 1
        if j < hi and tokens[j].is_ident and j + 1 < hi \
                and tokens[j + 1].text in {";", "=", "(", "{", ",", ")"}:
            local_types.setdefault(tokens[j].text, ("class", t.text))
        return
    if t.text in SMART_PTRS and i + 1 < hi and tokens[i + 1].text == "<":
        close = match_paren(tokens, i + 1, "<", ">")
        core = None
        for k in range(i + 2, close):
            if tokens[k].is_ident and tokens[k].text in prog.classes:
                core = tokens[k].text
        j = close + 1
        if core and j < hi and tokens[j].is_ident:
            local_types.setdefault(tokens[j].text, ("class", core))
        return
    if t.text in {"make_shared", "make_unique"} and i + 1 < hi \
            and tokens[i + 1].text == "<":
        close = match_paren(tokens, i + 1, "<", ">")
        core = None
        for k in range(i + 2, close):
            if tokens[k].is_ident and tokens[k].text in prog.classes:
                core = tokens[k].text
        # `auto x = make_shared<C>(...)`: walk back for `x =`.
        if core and i >= 2 and tokens[i - 1].text == "=" \
                and tokens[i - 2].is_ident:
            local_types[tokens[i - 2].text] = ("class", core)
        return


def _scan_range_for(inner, fd, prog, local_types, facts):
    """inner = tokens inside `for (...)`. Handles `decl : EXPR`: flags
    unordered iteration and binds structured-binding names to the element
    class of the container when known."""
    colon = None
    depth = 0
    for k, t in enumerate(inner):
        if t.text in {"(", "[", "<", "{"}:
            depth += 1
        elif t.text in {")", "]", ">", "}"}:
            depth -= 1
        elif t.text == ":" and depth == 0:
            # `::` is a distinct token, so a bare `:` is the range colon.
            colon = k
            break
    if colon is None:
        return
    expr = inner[colon + 1:]
    if not expr:
        return
    head = expr[0].text
    key = None
    if (fd.cls, head) in prog.member_unordered:
        key = (fd.cls, head)
    binding = local_types.get(head)
    container_key = (fd.cls, head)
    if key is not None:
        facts.unordered_iters.append(
            (expr[0].line, "".join(x.text for x in expr)))
    # Structured binding: bind the last name to the container element class.
    names = [t.text for t in inner[:colon] if t.is_ident and
             t.text not in {"auto", "const"}]
    elem = prog.member_class.get(container_key)
    if elem is None and binding and binding[0] == "class":
        elem = None  # iterating an object, not a container
    if names and elem:
        local_types.setdefault(names[-1], ("class", elem))


def _scan_blocklist(tokens, i, hi, facts):
    """Purity blocklist patterns at token i (recorded unconditionally; only
    PACT-reachable functions' facts are reported)."""
    t = tokens[i]
    if not t.is_ident:
        return
    text = t.text
    nxt = tokens[i + 1].text if i + 1 < hi else ""
    nxt2 = tokens[i + 2].text if i + 2 < hi else ""
    if nxt == "::" and nxt2 == "now" and (
            text.endswith("_clock") or text.endswith("Clock")):
        facts.blocklist.append(("nondet-clock", t.line, f"{text}::now()"))
        return
    if text in CLOCK_FUNCS and nxt == "(":
        facts.blocklist.append(("nondet-clock", t.line, f"{text}()"))
        return
    if text == "time" and nxt == "(":
        facts.blocklist.append(("nondet-clock", t.line, "time()"))
        return
    if text in RANDOM_FUNCS and (nxt == "(" or text == "random_device"):
        facts.blocklist.append(("nondet-random", t.line, text))
        return
    if text == "get_id" and i >= 2 and tokens[i - 1].text == "::" \
            and tokens[i - 2].text == "this_thread":
        facts.blocklist.append(
            ("nondet-thread-id", t.line, "this_thread::get_id()"))
        return
    if text in THREAD_ID_FUNCS and nxt == "(":
        facts.blocklist.append(("nondet-thread-id", t.line, f"{text}()"))
        return
    if text == "reinterpret_cast" and nxt == "<" and nxt2 in {
            "uintptr_t", "intptr_t", "uint64_t", "size_t"}:
        facts.blocklist.append(
            ("nondet-pointer", t.line, f"reinterpret_cast<{nxt2}>(pointer)"))
        return
    if text == "hash" and nxt == "<":
        close = match_paren(tokens, i + 1, "<", ">")
        if any(x.text == "*" for x in tokens[i + 2:close]):
            facts.blocklist.append(
                ("nondet-pointer", t.line, "std::hash over a pointer type"))


# ---------------------------------------------------------------------------
# Whole-program passes
# ---------------------------------------------------------------------------

def build_program(files):
    prog = Program()
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            tokens, comments = tokenize(f.read())
        prog.file_tokens[path] = tokens
        prog.file_comments[path] = comments
        parse_file(prog, path, tokens, comments)
    _resolve_member_cores(prog)
    return prog


def analyze_program(prog):
    """Runs body analysis for every function (plus lambda sub-bodies),
    returning {qname_key: (FunctionDef, BodyFacts)} keyed by id."""
    resolver = LockResolver(prog)
    results = []
    worklist = list(prog.functions)
    while worklist:
        fd = worklist.pop()
        facts, lambdas = analyze_body(fd, prog, resolver)
        results.append((fd, facts))
        for intro, lo, l_hi in lambdas:
            lam = FunctionDef(
                f"{fd.qname}::<lambda@{fd.file_tokens[intro].line}>",
                fd.cls, f"<lambda@{fd.file_tokens[intro].line}>",
                fd.path, fd.file_tokens[intro].line, lo, l_hi,
                fd.file_tokens, fd.comments, [])
            worklist.append(lam)
    return results


class Finding:
    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message


def lock_order_findings(prog, results):
    """Builds the whole-program lock graph (direct nesting + locks acquired
    by callees while held) and reports every edge participating in a
    lock-class cycle, plus self-deadlocks and locks held across co_await."""
    findings = []

    # -- transitive "locks acquired by this function or its callees" -------
    direct_locks = {}   # id(fd) -> {lock: (path, line)}
    calls = {}          # id(fd) -> {callee names}
    fds = {}
    for fd, facts in results:
        fds[id(fd)] = fd
        locks = {}
        for lock, line, _expr in facts.acquires:
            locks.setdefault(lock, (fd.path, line))
        for _hl, _hline, lock, line in facts.edges:
            locks.setdefault(lock, (fd.path, line))
        # edges only record nested acquisitions; record *all* acquisitions:
        calls[id(fd)] = facts.calls
        direct_locks[id(fd)] = locks

    # trans[id] = {lock: (via_callee or None, path, line)}
    trans = {k: {lock: (None, p, ln) for lock, (p, ln) in v.items()}
             for k, v in direct_locks.items()}
    changed = True
    while changed:
        changed = False
        for fd, facts in results:
            mine = trans[id(fd)]
            for callee in calls[id(fd)]:
                for target in prog.by_name.get(callee, ()):
                    if id(target) not in trans or id(target) == id(fd):
                        continue
                    for lock, (_via, p, ln) in trans[id(target)].items():
                        if lock not in mine:
                            mine[lock] = (target, p, ln)
                            changed = True

    # -- edge set with witnesses ------------------------------------------
    # edge (A, B) -> list of witness dicts
    edges = defaultdict(list)
    for fd, facts in results:
        for held_lock, held_line, lock, line in facts.edges:
            edges[(held_lock, lock)].append({
                "path": fd.path, "line": line, "func": fd.qname,
                "held_line": held_line, "via": None,
            })
        for held, callee, line in facts.held_calls:
            for target in prog.by_name.get(callee, ()):
                if id(target) not in trans:
                    continue
                for lock, (via, p, ln) in trans[id(target)].items():
                    for held_lock, held_line in held:
                        if held_lock == lock:
                            continue
                        chain = f"{callee}()"
                        if via is not None:
                            chain += f" -> ... -> {via.qname}()"
                        edges[(held_lock, lock)].append({
                            "path": fd.path, "line": line, "func": fd.qname,
                            "held_line": held_line,
                            "via": (chain, p, ln),
                        })

    # -- cycles at lock-class granularity (self-edges excluded) -----------
    graph = defaultdict(set)
    for (a, b) in edges:
        if a != b:
            graph[a].add(b)
            graph.setdefault(b, set())
    sccs = _tarjan(graph)
    cyclic = set()
    for comp in sccs:
        if len(comp) > 1:
            cyclic.add(frozenset(comp))
    in_cycle = set()
    for comp in cyclic:
        for node in comp:
            in_cycle.add(node)

    for (a, b), wits in sorted(edges.items()):
        if a == b:
            continue
        comp = next((c for c in cyclic if a in c and b in c), None)
        if comp is None:
            continue
        cycle_desc = " <-> ".join(sorted(comp))
        # Report the first witness per edge (deterministic: sorted).
        wits = sorted(wits, key=lambda w: (w["path"], w["line"]))
        w = wits[0]
        msg = (f"lock-order cycle [{cycle_desc}]: '{b}' acquired while "
               f"'{a}' is held (held since line {w['held_line']} in "
               f"{w['func']})")
        if w["via"]:
            chain, p, ln = w["via"]
            msg += (f" via call to {chain}, which acquires '{b}' at "
                    f"{os.path.basename(p)}:{ln}")
        findings.append(Finding("lock-order-cycle", w["path"], w["line"],
                                msg))

    # -- self-deadlock + lock-across-await --------------------------------
    for fd, facts in results:
        for expr_text, first_line, line in facts.self_deadlocks:
            findings.append(Finding(
                "self-deadlock", fd.path, line,
                f"`{expr_text}` re-acquired while already held (first "
                f"acquired line {first_line}, {fd.qname}); snapper::Mutex "
                "is non-recursive, this blocks forever"))
        for lock, decl_line, await_line in facts.await_holds:
            findings.append(Finding(
                "lock-across-await", fd.path, await_line,
                f"'{lock}' (acquired line {decl_line}, {fd.qname}) is held "
                "across co_await; the resuming executor's acquisitions form "
                "unordered edges against it, closing cycles no syntactic "
                "nesting shows"))
    return findings


def _tarjan(graph):
    """Iterative Tarjan SCC."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]
    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                elif nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)
    return sccs


def purity_findings(prog, results):
    """Name-based reachability from the PACT entry points; blocklist hits
    inside reachable functions are findings (with the entry chain)."""
    findings = []
    by_id = {}
    entry = []
    exempt = set()
    for fd, facts in results:
        by_id[id(fd)] = (fd, facts)
        if fd.qname in PACT_ENTRY_QNAMES or _marked(fd, ENTRY_MARK_RE):
            entry.append(fd)
        if _marked(fd, EXEMPT_MARK_RE):
            exempt.add(id(fd))

    # BFS with parent chain.
    parent = {}
    queue = deque()
    for fd in entry:
        if id(fd) not in parent:
            parent[id(fd)] = None
            queue.append(fd)
    while queue:
        fd = queue.popleft()
        if id(fd) in exempt:
            continue
        _fd, facts = by_id[id(fd)]
        for callee in facts.calls:
            for target in prog.by_name.get(callee, ()):
                if id(target) in by_id and id(target) not in parent:
                    parent[id(target)] = id(fd)
                    queue.append(target)

    def chain(fd):
        names = []
        cur = id(fd)
        guard = 0
        while cur is not None and guard < 32:
            names.append(by_id[cur][0].qname)
            cur = parent[cur]
            guard += 1
        return " <- ".join(names)

    for fd, facts in results:
        if id(fd) not in parent or id(fd) in exempt:
            continue
        for rule, line, detail in facts.blocklist:
            findings.append(Finding(
                rule, fd.path, line,
                f"{detail} in PACT-reachable {fd.qname} "
                f"(path: {chain(fd)})"))
        for line, expr_text in facts.unordered_iters:
            findings.append(Finding(
                "nondet-unordered-iter", fd.path, line,
                f"iteration over unordered container `{expr_text}` in "
                f"PACT-reachable {fd.qname}; traversal order depends on "
                f"hash/rehash history (path: {chain(fd)})"))
    return findings


def _marked(fd, mark_re):
    """True if the function's definition line (or the comment block directly
    above it) carries the given marker comment."""
    if mark_re.search(fd.comments.get(fd.line, "")):
        return True
    probe = fd.line - 1
    while probe in fd.comments:
        if mark_re.search(fd.comments[probe]):
            return True
        probe -= 1
    return False


# ---------------------------------------------------------------------------
# Suppressions, reporting, self-test
# ---------------------------------------------------------------------------

def load_allowlist(path):
    """Entries: <path-suffix>:<rule>[:<message-substring>]."""
    allow = []
    if not path or not os.path.exists(path):
        return allow
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            entry = raw.split("#", 1)[0].strip()
            if not entry:
                continue
            parts = entry.split(":", 2)
            if len(parts) < 2 or parts[1] not in RULES or not parts[0]:
                print(f"snapper_analyze: bad allowlist entry {entry!r} "
                      f"({path}:{lineno})", file=sys.stderr)
                continue
            suffix, rule = parts[0], parts[1]
            substr = parts[2] if len(parts) == 3 else None
            allow.append((suffix, rule, substr))
    return allow


def inline_allowed(comments, line, rule):
    """An inline SNAPPER-ANALYZE-ALLOW(rule): reason on the line or the
    comment block above. Returns (allowed, error): a matching allow without
    a reason is an error, not a suppression."""

    def probe_line(text):
        for m in ALLOW_RE.finditer(text):
            rules = [r.strip() for r in m.group(1).split(",")]
            if rule in rules:
                reason = m.group(3).strip()
                if m.group(2) != ":" or not reason:
                    return None, ("SNAPPER-ANALYZE-ALLOW requires a "
                                  "`: <reason>`")
                return True, None
        return False, None

    hit, err = probe_line(comments.get(line, ""))
    if hit or err:
        return hit, err
    probe = line - 1
    while probe in comments:
        hit, err = probe_line(comments[probe])
        if hit or err:
            return hit, err
        probe -= 1
    return False, None


def run_analysis(files):
    prog = build_program(files)
    results = analyze_program(prog)
    findings = lock_order_findings(prog, results)
    findings.extend(purity_findings(prog, results))
    return prog, findings


def report(prog, findings, allowlist):
    failures = 0
    seen = set()
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule,
                                             f.message)):
        key = (f.path, f.line, f.rule, f.message)
        if key in seen:
            continue
        seen.add(key)
        comments = prog.file_comments.get(f.path, {})
        allowed, err = inline_allowed(comments, f.line, f.rule)
        if err:
            print(f"{f.path}:{f.line}: [allow-syntax] {err}")
            failures += 1
            continue
        if allowed:
            continue
        norm = f.path.replace(os.sep, "/")
        if any(norm.endswith(sfx) and f.rule == rule and
               (substr is None or substr in f.message)
               for sfx, rule, substr in allowlist):
            continue
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        failures += 1
    return failures


def dump_graph(files):
    prog = build_program(files)
    results = analyze_program(prog)
    edges = defaultdict(list)
    for fd, facts in results:
        for held_lock, held_line, lock, line in facts.edges:
            edges[(held_lock, lock)].append(
                f"{os.path.basename(fd.path)}:{line} in {fd.qname}")
        for held, callee, line in facts.held_calls:
            for held_lock, _hl in held:
                edges[(held_lock, f"call:{callee}")].append(
                    f"{os.path.basename(fd.path)}:{line} in {fd.qname}")
    for (a, b), wits in sorted(edges.items()):
        if str(b).startswith("call:"):
            continue
        print(f"{a} -> {b}")
        for w in wits[:4]:
            print(f"    {w}")
    return 0


def self_test(fixture_dir):
    files = discover_files([fixture_dir], None)
    if not files:
        print(f"snapper_analyze --self-test: no fixtures under "
              f"{fixture_dir}", file=sys.stderr)
        return 1
    prog, findings = run_analysis(files)
    expected = set()
    failures = 0
    for path in files:
        comments = prog.file_comments[path]
        for line, text in comments.items():
            m = EXPECT_RE.search(text)
            if not m:
                continue
            for rule in m.group(1).split(","):
                rule = rule.strip()
                # "allow-syntax" is EXPECT-able so fixtures can pin the
                # reason-required contract of SNAPPER-ANALYZE-ALLOW.
                if rule not in RULES and rule != "allow-syntax":
                    print(f"{path}:{line}: unknown EXPECT-ANALYZE rule "
                          f"{rule!r}", file=sys.stderr)
                    failures += 1
                expected.add((os.path.realpath(path), line, rule))
    got = set()
    for f in findings:
        comments = prog.file_comments.get(f.path, {})
        allowed, err = inline_allowed(comments, f.line, f.rule)
        if err:
            got.add((os.path.realpath(f.path), f.line, "allow-syntax"))
        elif not allowed:
            got.add((os.path.realpath(f.path), f.line, f.rule))
    for path, line, rule in sorted(expected - got):
        print(f"{path}:{line}: MISSED expected [{rule}]")
        failures += 1
    for path, line, rule in sorted(got - expected):
        print(f"{path}:{line}: UNEXPECTED [{rule}]")
        failures += 1
    if failures == 0:
        print(f"snapper_analyze self-test OK over {len(files)} fixtures")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze (default: "
                             "translation units from compile_commands.json, "
                             "else src/)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for TU discovery")
    parser.add_argument("--allowlist",
                        default=os.path.join(os.path.dirname(
                            os.path.abspath(__file__)),
                            "snapper_analyze_allow.txt"),
                        help="file-level suppression list")
    parser.add_argument("--engine", choices=("syntactic", "libclang"),
                        default="syntactic",
                        help="analysis backend (libclang is gated on the "
                             "clang Python bindings being importable)")
    parser.add_argument("--dump-graph", action="store_true",
                        help="print the raw lock-acquisition graph and exit")
    parser.add_argument("--self-test", metavar="FIXTURE_DIR",
                        help="verify rule reports against EXPECT-ANALYZE "
                             "markers in the fixture corpus")
    args = parser.parse_args()

    if args.engine == "libclang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("snapper_analyze: --engine=libclang needs the clang "
                  "Python bindings (python3 -m clang), which this "
                  "environment does not ship; use the default syntactic "
                  "engine — it is the CI-enforced path.", file=sys.stderr)
            return 2
        print("snapper_analyze: libclang backend is reserved; falling back "
              "to the syntactic engine.", file=sys.stderr)

    if args.self_test:
        return self_test(args.self_test)

    cc = args.compile_commands or default_compile_commands()
    files = discover_files(args.paths, cc)
    if args.dump_graph:
        return dump_graph(files)
    prog, findings = run_analysis(files)
    failures = report(prog, findings, load_allowlist(args.allowlist))
    if failures:
        print(f"snapper_analyze: {failures} finding(s) in {len(files)} "
              f"files", file=sys.stderr)
        return 1
    print(f"snapper_analyze: clean over {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
