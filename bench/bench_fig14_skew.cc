// Fig. 14 — Throughput vs workload skewness: PACT, ACT, OrleansTxn and
// OrleansTxn on a deadlock-free workload, across the five zipf skew levels
// (txnsize 4, CC + logging).
//
// Expected shape (paper): ACT and OrleansTxn throughput falls with skew
// (contention); OrleansTxn below ACT (TA hops, ELR cascades), deadlock-free
// OrleansTxn above regular OrleansTxn; PACT *rises* with skew (batching
// amortizes better), reaching ~2x ACT under high skew.
#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  const uint64_t kActors = 10000;
  PrintHeader("Fig. 14: throughput vs skew (txnsize 4, CC+log)");

  for (const auto& level : harness::kSkewLevels) {
    const bool skewed = level.zipf_s >= 1.0;

    SmallBankWorkloadConfig workload;
    workload.num_actors = kActors;
    workload.txn_size = 4;
    workload.distribution = level.distribution;
    workload.zipf_s = level.zipf_s;

    // PACT on Snapper.
    {
      SnapperBankSilo silo(harness::SnapperConfigForCores(4, true));
      workload.actor_type = silo.actor_type;
      workload.pact_fraction = 1.0;
      workload.deadlock_free = false;
      BenchResult r = RunBench(BenchClientConfig(TxnMode::kPact, skewed),
                               MakeSmallBankGenerator(workload),
                               harness::SnapperSubmit(*silo.runtime));
      PrintRow(std::string(level.name) + " / PACT", r);
    }
    // ACT on Snapper.
    {
      SnapperBankSilo silo(harness::SnapperConfigForCores(4, true));
      workload.actor_type = silo.actor_type;
      workload.pact_fraction = 0.0;
      workload.deadlock_free = false;
      BenchResult r = RunBench(BenchClientConfig(TxnMode::kAct, skewed),
                               MakeSmallBankGenerator(workload),
                               harness::SnapperSubmit(*silo.runtime));
      PrintRow(std::string(level.name) + " / ACT", r);
    }
    // OrleansTxn baseline.
    for (bool deadlock_free : {false, true}) {
      otxn::OtxnConfig config;
      config.num_workers = 4;
      OtxnBankSilo silo(config);
      workload.actor_type = silo.actor_type;
      workload.pact_fraction = 0.0;
      workload.deadlock_free = deadlock_free;
      BenchResult r = RunBench(BenchClientConfig(TxnMode::kAct, skewed),
                               MakeSmallBankGenerator(workload),
                               harness::OtxnSubmit(*silo.runtime));
      PrintRow(std::string(level.name) +
                   (deadlock_free ? " / OrleansTxn(dl-free)" : " / OrleansTxn"),
               r);
    }
  }
  return 0;
}
