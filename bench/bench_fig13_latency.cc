// Fig. 13 — Percentile latency (p50/p90/p99) of committed PACTs vs ACTs
// across transaction sizes, CC + logging enabled, uniform distribution.
//
// Expected shape (paper): similar medians at small sizes; at txnsize 64 PACT
// has a higher median (batch-granularity commitment) but far lower tail —
// ACT's p99 roughly 2x PACT's (nondeterministic blocking).
#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  PrintHeader("Fig. 13: percentile latency vs txnsize (CC+log, uniform)");
  std::printf("%8s %6s %10s %10s %10s\n", "txnsize", "mode", "p50(ms)",
              "p90(ms)", "p99(ms)");

  for (int txnsize : {2, 4, 8, 16, 32, 64}) {
    for (TxnMode mode : {TxnMode::kPact, TxnMode::kAct}) {
      SnapperBankSilo silo(harness::SnapperConfigForCores(4, true));
      SmallBankWorkloadConfig workload;
      workload.actor_type = silo.actor_type;
      workload.num_actors = 10000;
      workload.txn_size = txnsize;
      workload.pact_fraction = mode == TxnMode::kPact ? 1.0 : 0.0;
      ClientConfig client = BenchClientConfig(mode, false, 64);
      BenchResult r = RunBench(client, MakeSmallBankGenerator(workload),
                               harness::SnapperSubmit(*silo.runtime));
      std::printf("%8d %6s %10.1f %10.1f %10.1f\n", txnsize,
                  mode == TxnMode::kPact ? "PACT" : "ACT",
                  r.totals.latency.Quantile(0.5) / 1000.0,
                  r.totals.latency.Quantile(0.9) / 1000.0,
                  r.totals.latency.Quantile(0.99) / 1000.0);
      std::fflush(stdout);
    }
  }
  return 0;
}
