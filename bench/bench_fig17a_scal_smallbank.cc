// Fig. 17a — SmallBank scalability: PACT / ACT / hybrid(90% PACT) / NT
// throughput as the silo's worker count grows, under a uniform workload and
// under the hotspot workload of §5.4.1 (1% hot set, 3 hot accesses per txn).
// Resources (actors, coordinators, loggers) scale with cores per Fig. 11a.
//
// Expected shape (paper): near-linear scaling for all modes under uniform;
// under the hotspot workload PACT clearly outperforms ACT. NOTE: on a
// single-core host (this repo's reference environment) the absolute curve
// flattens — see EXPERIMENTS.md; SNAPPER_CORES can request wider sweeps on
// real hardware.
#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  PrintHeader("Fig. 17a: SmallBank scalability (txnsize 4, CC+log)");
  BenchJsonWriter json("fig17a_scal_smallbank");
  auto mode_index = [](const std::string& m) {
    return m == "PACT" ? 0.0 : m == "ACT" ? 1.0 : m == "hybrid90" ? 2.0 : 3.0;
  };

  for (size_t cores : BenchCoreCounts()) {
    const auto scale = harness::ScaleForCores(cores);
    for (bool hotspot : {false, true}) {
      for (const char* mode_name : {"PACT", "ACT", "hybrid90", "NT"}) {
        SnapperBankSilo silo(harness::SnapperConfigForCores(
            cores, std::string(mode_name) != "NT"));
        SmallBankWorkloadConfig workload;
        workload.actor_type = silo.actor_type;
        workload.num_actors = scale.smallbank_actors;
        workload.txn_size = 4;
        if (hotspot) {
          workload.distribution = Distribution::kHotspot;
          workload.hot_fraction = 0.01;
          workload.hot_accesses = 3;
        }
        std::string name = mode_name;
        TxnMode mode = TxnMode::kPact;
        if (name == "PACT") {
          workload.pact_fraction = 1.0;
        } else if (name == "ACT") {
          workload.pact_fraction = 0.0;
          mode = TxnMode::kAct;
        } else if (name == "hybrid90") {
          workload.pact_fraction = 0.9;
        } else {
          workload.pact_fraction = 1.0;  // mode overridden to NT below
          mode = TxnMode::kNt;
        }
        GeneratorFn generator = MakeSmallBankGenerator(workload);
        if (mode == TxnMode::kNt) {
          auto inner = generator;
          generator = [inner](Rng& rng) {
            auto request = inner(rng);
            request.mode = TxnMode::kNt;
            return request;
          };
        }
        ClientConfig client = BenchClientConfig(
            mode == TxnMode::kAct ? TxnMode::kAct : TxnMode::kPact, hotspot);
        BenchResult r = RunBench(client, generator,
                                 harness::SnapperSubmit(*silo.runtime));
        char label[96];
        std::snprintf(label, sizeof(label), "%zu cores / %s / %s", cores,
                      hotspot ? "hotspot" : "uniform", mode_name);
        PrintRow(label, r);
        // mode: 0=PACT 1=ACT 2=hybrid90 3=NT.
        json.AddRow({{"cores", static_cast<double>(cores)},
                     {"hotspot", hotspot ? 1.0 : 0.0},
                     {"mode", mode_index(mode_name)},
                     {"tps", r.Throughput()},
                     {"abort_rate", r.AbortRate()},
                     {"p50_ms", r.totals.latency.Quantile(0.5) / 1000.0},
                     {"p99_ms", r.totals.latency.Quantile(0.99) / 1000.0}});
      }
    }
  }
  json.Write();
  return 0;
}
