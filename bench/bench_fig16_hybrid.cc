// Fig. 16 — Hybrid execution across skew levels and PACT percentages:
//  (a) total throughput with the PACT/ACT contribution split,
//  (b) p50/p90 latency per transaction class,
//  (c) the abort-rate breakdown into the paper's four categories:
//      (1) ACT-ACT conflicts, (2) PACT-ACT deadlocks (timeouts),
//      (3) incomplete AfterSet, (4) serializability-check failures.
//
// Expected shape (paper): throughput falls as PACT% falls; under high skew
// there is a sharp drop from 100% to 99% PACT (mutual blocking around hot
// actors); most aborts come from (1) and (3); adding a few PACTs to a pure
// ACT workload *increases* the abort rate via (3).
#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  const double kPactPercents[] = {1.0, 0.99, 0.9, 0.75, 0.5, 0.25, 0.0};

  PrintHeader("Fig. 16: hybrid execution (SmallBank, txnsize 4, CC+log)");
  std::printf(
      "%10s %6s | %9s %9s %9s | %8s %8s %8s %8s | %7s %7s %7s %7s\n", "skew",
      "PACT%", "tps", "pact_tps", "act_tps", "p50P(ms)", "p90P(ms)",
      "p50A(ms)", "p90A(ms)", "abrt1%", "abrt2%", "abrt3%", "abrt4%");

  for (const auto& level : harness::kSkewLevels) {
    const bool skewed = level.zipf_s >= 1.0;
    for (double pact_fraction : kPactPercents) {
      SnapperBankSilo silo(harness::SnapperConfigForCores(4, true));
      SmallBankWorkloadConfig workload;
      workload.actor_type = silo.actor_type;
      workload.num_actors = 10000;
      workload.txn_size = 4;
      workload.distribution = level.distribution;
      workload.zipf_s = level.zipf_s;
      workload.pact_fraction = pact_fraction;
      // Two client threads, one nominally per class (§5.3): approximated by
      // a mixed stream over two clients with the PACT% applied per txn.
      ClientConfig client = BenchClientConfig(
          pact_fraction >= 0.5 ? TxnMode::kPact : TxnMode::kAct, skewed);
      client.num_clients = 2;
      BenchResult r = RunBench(client, MakeSmallBankGenerator(workload),
                               harness::SnapperSubmit(*silo.runtime));
      std::printf(
          "%10s %5.0f%% | %9.0f %9.0f %9.0f | %8.1f %8.1f %8.1f %8.1f | "
          "%6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
          level.name, pact_fraction * 100, r.Throughput(),
          r.PactThroughput(), r.ActThroughput(),
          r.totals.pact_latency.Quantile(0.5) / 1000.0,
          r.totals.pact_latency.Quantile(0.9) / 1000.0,
          r.totals.act_latency.Quantile(0.5) / 1000.0,
          r.totals.act_latency.Quantile(0.9) / 1000.0,
          r.AbortRate(AbortReason::kActActConflict) * 100,
          r.AbortRate(AbortReason::kPactActDeadlock) * 100,
          r.AbortRate(AbortReason::kIncompleteAfterSet) * 100,
          r.AbortRate(AbortReason::kSerializabilityCheck) * 100);
      std::fflush(stdout);
    }
  }
  return 0;
}
