// Fig. 15 — Latency breakdown microbenchmark: Snapper ACT vs OrleansTxn on
// xW+yN transactions (x read-write accesses + y no-op grain calls), 4
// actors, pipeline 1 (conflict-free), logging enabled.
//
// The paper divides the transaction lifecycle into I1..I9; this bench
// reports the three aggregate phases measured by TxnTimings:
//   start  = submission -> tid/context assigned   (I1-I3)
//   exec   = context -> method chain finished     (I4-I7)
//   commit = execution -> commit decision durable (I8-I9)
//
// Expected shape (paper): similar totals for 0W+1N; OrleansTxn noticeably
// slower on exec (transactional grain calls) and much slower on commit for
// 1W+3N — its TA sends Prepare even to the single participating actor,
// while Snapper's root actor self-coordinates with zero messages.
#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  struct Shape {
    const char* name;
    int writes;  // RW deposit targets (plus the root, which always writes)
    int noops;
  };
  // xW+yN counts the accessed actors after the root; the root performs the
  // withdraw (RW) except in the pure-no-op shapes, where it also no-ops.
  const Shape kShapes[] = {
      {"0W+1N", 0, 1},
      {"0W+4N", 0, 4},
      {"1W+3N", 1, 3},
      {"4W+0N", 4, 0},
  };

  PrintHeader("Fig. 15: latency breakdown, ACT vs OrleansTxn (pipeline 1)");
  std::printf("%8s %12s %10s %10s %10s %10s\n", "shape", "system",
              "start(us)", "exec(us)", "commit(us)", "total(us)");

  for (const Shape& shape : kShapes) {
    auto configure = [&](uint32_t actor_type) {
      SmallBankWorkloadConfig workload;
      workload.actor_type = actor_type;
      workload.num_actors = 4 + static_cast<uint64_t>(shape.writes) +
                            static_cast<uint64_t>(shape.noops);
      workload.txn_size = 1 + shape.writes + shape.noops;
      workload.noop_accesses = shape.noops;
      workload.pact_fraction = 0.0;
      return workload;
    };
    auto report = [&](const char* system, const BenchResult& r) {
      const double start = r.totals.start_us.Mean();
      const double exec = r.totals.exec_us.Mean();
      const double commit = r.totals.commit_us.Mean();
      std::printf("%8s %12s %10.0f %10.0f %10.0f %10.0f\n", shape.name,
                  system, start, exec, commit, start + exec + commit);
      std::fflush(stdout);
    };

    {
      SnapperBankSilo silo(harness::SnapperConfigForCores(4, true));
      ClientConfig client = BenchClientConfig(TxnMode::kAct, false, 1);
      client.num_clients = 1;
      BenchResult r = RunBench(client, MakeSmallBankGenerator(
                                           configure(silo.actor_type)),
                               harness::SnapperSubmit(*silo.runtime));
      report("ACT", r);
    }
    {
      otxn::OtxnConfig config;
      config.num_workers = 4;
      OtxnBankSilo silo(config);
      ClientConfig client = BenchClientConfig(TxnMode::kAct, false, 1);
      client.num_clients = 1;
      BenchResult r = RunBench(client, MakeSmallBankGenerator(
                                           configure(silo.actor_type)),
                               harness::OtxnSubmit(*silo.runtime));
      report("OrleansTxn", r);
    }
  }
  return 0;
}
