// Prints the paper's experimental-setting tables: Fig. 11a (resource
// scaling), Fig. 11b (pipeline sizes and skew levels) and Fig. 18 (TPC-C
// actor layout). Not a measurement — a self-describing record of the
// configuration every other bench uses.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  PrintHeader("Fig. 11a: experimental settings (resources scale with cores)");
  std::printf("%8s %16s %14s %10s\n", "cores", "smallbank actors",
              "coordinators", "loggers");
  for (size_t cores : {4u, 8u, 16u, 32u}) {
    auto s = harness::ScaleForCores(cores);
    std::printf("%8zu %16llu %14zu %10zu\n", s.cores,
                static_cast<unsigned long long>(s.smallbank_actors),
                s.coordinators, s.loggers);
  }

  PrintHeader("Fig. 11b: skew levels (zipf constants) and pipeline sizes");
  std::printf("%10s %14s %8s\n", "skew", "distribution", "zipf_s");
  for (const auto& level : harness::kSkewLevels) {
    std::printf("%10s %14s %8.2f\n", level.name,
                level.distribution == Distribution::kUniform ? "uniform"
                                                             : "zipf",
                level.zipf_s);
  }
  std::printf("pipeline: PACT=%zu  ACT(uniform)=%zu  ACT(skewed)=%zu\n",
              harness::PipelineFor(TxnMode::kPact, false),
              harness::PipelineFor(TxnMode::kAct, false),
              harness::PipelineFor(TxnMode::kAct, true));

  PrintHeader("Fig. 18: TPC-C actor layout (per warehouse)");
  tpcc::TpccLayout layout;
  std::printf("warehouse+district rows      : 1 actor (RW)\n");
  std::printf("stock table partitions       : %d actors (RW)\n",
              layout.stock_partitions_per_warehouse);
  std::printf("item table partitions        : %d actors (read-only)\n",
              layout.item_partitions_per_warehouse);
  std::printf("customer table partitions    : %d actors (read-only)\n",
              layout.customer_partitions_per_warehouse);
  std::printf("order/new-order/order-line   : %d actors (RW; skew knob)\n",
              layout.order_partitions_per_warehouse);
  std::printf("order lines per NewOrder     : %d..%d (avg ~%d)\n",
              layout.min_ol_cnt, layout.max_ol_cnt,
              (layout.min_ol_cnt + layout.max_ol_cnt) / 2);
  std::printf("remote-warehouse stock prob. : %.0f%%\n",
              layout.remote_stock_probability * 100);
  return 0;
}
