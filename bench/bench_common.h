// Shared scaffolding for the figure benches: builds engine instances, runs
// the client harness, prints aligned result rows. Every bench binary prints
// the rows/series of one paper table or figure (see DESIGN.md §3).
//
// Scale knobs (env): SNAPPER_EPOCH_SECONDS, SNAPPER_NUM_EPOCHS,
// SNAPPER_WARMUP_EPOCHS, SNAPPER_CORES (comma list for Fig. 17).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/paper_config.h"
#include "workloads/smallbank.h"
#include "workloads/smallbank_logic.h"
#include "workloads/tpcc.h"
#include "workloads/tpcc_logic.h"

namespace snapper::bench {

using harness::BenchResult;
using harness::ClientConfig;
using harness::Distribution;
using harness::GeneratorFn;
using harness::MakeSmallBankGenerator;
using harness::MakeTpccGenerator;
using harness::RunBench;
using harness::SmallBankWorkloadConfig;
using harness::SubmitFn;
using harness::TpccWorkloadConfig;

/// WAL device latency applied to every Sync by the bench MemEnvs: simulates
/// the paper's io2 SSD (default 100us; override SNAPPER_SYNC_LATENCY_US).
inline std::unique_ptr<MemEnv> MakeBenchEnv() {
  auto env = std::make_unique<MemEnv>();
  env->set_sync_latency(std::chrono::microseconds(
      harness::EnvInt("SNAPPER_SYNC_LATENCY_US", 100)));
  return env;
}

/// A Snapper silo with SmallBank registered.
struct SnapperBankSilo {
  std::unique_ptr<MemEnv> env = MakeBenchEnv();
  std::unique_ptr<SnapperRuntime> runtime;
  uint32_t actor_type = 0;

  explicit SnapperBankSilo(SnapperConfig config) {
    runtime = std::make_unique<SnapperRuntime>(config, env.get());
    actor_type = smallbank::RegisterSmallBank(*runtime);
    runtime->Start();
  }
  ~SnapperBankSilo() { runtime.reset(); }  // runtime drains before env dies
};

/// An OrleansTxn silo with SmallBank registered.
struct OtxnBankSilo {
  std::unique_ptr<MemEnv> env = MakeBenchEnv();
  std::unique_ptr<otxn::OtxnRuntime> runtime;
  uint32_t actor_type = 0;

  explicit OtxnBankSilo(otxn::OtxnConfig config) {
    runtime = std::make_unique<otxn::OtxnRuntime>(config, env.get());
    actor_type = runtime->RegisterActorType("SmallBank", [](uint64_t) {
      return std::make_shared<smallbank::SmallBankLogic<otxn::OtxnActor>>();
    });
  }
  ~OtxnBankSilo() { runtime.reset(); }
};

/// A Snapper silo with TPC-C registered.
struct SnapperTpccSilo {
  std::unique_ptr<MemEnv> env = MakeBenchEnv();
  std::unique_ptr<SnapperRuntime> runtime;
  tpcc::TpccTypes types;

  explicit SnapperTpccSilo(SnapperConfig config) {
    runtime = std::make_unique<SnapperRuntime>(config, env.get());
    types = tpcc::RegisterTpcc(*runtime);
    runtime->Start();
  }
  ~SnapperTpccSilo() { runtime.reset(); }
};

inline ClientConfig BenchClientConfig(TxnMode mode, bool skewed,
                                      size_t pipeline_override = 0) {
  ClientConfig config = harness::DefaultClientConfig(mode, skewed);
  if (pipeline_override != 0) config.pipeline = pipeline_override;
  return config;
}

/// Core counts for the scalability benches: SNAPPER_CORES env ("4,8,16,32")
/// or a laptop-safe default. The host here is documented in EXPERIMENTS.md.
inline std::vector<size_t> BenchCoreCounts() {
  const char* env = std::getenv("SNAPPER_CORES");
  std::vector<size_t> cores;
  if (env != nullptr) {
    size_t value = 0;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        value = value * 10 + static_cast<size_t>(*p - '0');
      } else {
        if (value > 0) cores.push_back(value);
        value = 0;
        if (*p == '\0') break;
      }
    }
  }
  if (cores.empty()) cores = {1, 2, 4};
  return cores;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, const BenchResult& r) {
  std::printf("%-34s tps=%9.0f  abort=%5.1f%%  p50=%7.1fms  p90=%7.1fms  "
              "p99=%7.1fms\n",
              label.c_str(), r.Throughput(), r.AbortRate() * 100,
              r.totals.latency.Quantile(0.5) / 1000.0,
              r.totals.latency.Quantile(0.9) / 1000.0,
              r.totals.latency.Quantile(0.99) / 1000.0);
  std::fflush(stdout);
}

/// Machine-readable perf snapshot beside the human-readable rows: each
/// figure bench appends one JSON object per row and writes
/// `<dir>/BENCH_<name>.json` at exit (dir defaults to bench_results/,
/// override with SNAPPER_BENCH_JSON_DIR; set empty to disable). Snapshots
/// are committed so perf regressions show up in review as JSON diffs.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}

  /// One row: ordered (key, value) pairs, e.g. {{"txnsize", 4}, ...}.
  void AddRow(
      const std::vector<std::pair<std::string, double>>& fields) {
    std::string row = "    {";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) row += ", ";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", fields[i].second);
      row += "\"" + fields[i].first + "\": " + buf;
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  /// Writes the snapshot; returns false (and warns) if the directory is
  /// missing. Call once after the last row.
  bool Write() const {
    const char* dir_env = std::getenv("SNAPPER_BENCH_JSON_DIR");
    const std::string dir = dir_env != nullptr ? dir_env : "bench_results";
    if (dir.empty()) return true;  // disabled
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJsonWriter: cannot write %s (run from the "
                   "repo root or set SNAPPER_BENCH_JSON_DIR)\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::string> rows_;
};

}  // namespace snapper::bench
