// Ablations of the design choices DESIGN.md calls out (beyond the paper's
// figures):
//   * coordinator-ring size: token-cycle length sets batch granularity
//     (§4.2.1-§4.2.2);
//   * logger count: group-commit contention (§4.1.1);
//   * idle token delay: latency/CPU trade-off of the ring when idle.
#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  SmallBankWorkloadConfig base;
  base.num_actors = 10000;
  base.txn_size = 4;
  base.pact_fraction = 1.0;

  PrintHeader("Ablation: coordinator-ring size (PACT, uniform)");
  for (size_t coordinators : {1u, 2u, 4u, 8u, 16u}) {
    SnapperConfig config = harness::SnapperConfigForCores(4, true);
    config.num_coordinators = coordinators;
    SnapperBankSilo silo(config);
    SmallBankWorkloadConfig workload = base;
    workload.actor_type = silo.actor_type;
    BenchResult r = RunBench(BenchClientConfig(TxnMode::kPact, false),
                             MakeSmallBankGenerator(workload),
                             harness::SnapperSubmit(*silo.runtime));
    char label[64];
    std::snprintf(label, sizeof(label), "%zu coordinators", coordinators);
    PrintRow(label, r);
  }

  PrintHeader("Ablation: logger count (PACT, uniform, logging on)");
  for (size_t loggers : {1u, 2u, 4u, 8u}) {
    SnapperConfig config = harness::SnapperConfigForCores(4, true);
    config.num_loggers = loggers;
    SnapperBankSilo silo(config);
    SmallBankWorkloadConfig workload = base;
    workload.actor_type = silo.actor_type;
    BenchResult r = RunBench(BenchClientConfig(TxnMode::kPact, false),
                             MakeSmallBankGenerator(workload),
                             harness::SnapperSubmit(*silo.runtime));
    char label[64];
    std::snprintf(label, sizeof(label), "%zu loggers", loggers);
    PrintRow(label, r);
  }

  PrintHeader("Ablation: idle token delay (PACT, uniform)");
  for (int delay_us : {0, 200, 1000, 5000}) {
    SnapperConfig config = harness::SnapperConfigForCores(4, true);
    config.idle_token_delay = std::chrono::microseconds(delay_us);
    SnapperBankSilo silo(config);
    SmallBankWorkloadConfig workload = base;
    workload.actor_type = silo.actor_type;
    BenchResult r = RunBench(BenchClientConfig(TxnMode::kPact, false),
                             MakeSmallBankGenerator(workload),
                             harness::SnapperSubmit(*silo.runtime));
    char label[64];
    std::snprintf(label, sizeof(label), "idle delay %dus", delay_us);
    PrintRow(label, r);
  }

  PrintHeader("Ablation: batching amortization (messages per PACT vs skew)");
  for (const auto& level : harness::kSkewLevels) {
    SnapperBankSilo silo(harness::SnapperConfigForCores(4, true));
    SmallBankWorkloadConfig workload = base;
    workload.actor_type = silo.actor_type;
    workload.distribution = level.distribution;
    workload.zipf_s = level.zipf_s;
    auto& counters = silo.runtime->context().counters;
    counters.Reset();
    BenchResult r = RunBench(
        BenchClientConfig(TxnMode::kPact, level.zipf_s >= 1.0),
        MakeSmallBankGenerator(workload),
        harness::SnapperSubmit(*silo.runtime));
    // Counters accumulate over the whole run (warm-up included): divide by
    // every transaction the run processed.
    const double all_txns =
        static_cast<double>(r.all_epochs.committed + r.all_epochs.aborted);
    const double msgs =
        static_cast<double>(counters.batch_msgs.load() +
                            counters.batch_completes.load() +
                            counters.batch_commits.load());
    std::printf("%-12s tps=%8.0f  one-way msgs/txn=%.2f\n", level.name,
                r.Throughput(), all_txns > 0 ? msgs / all_txns : 0);
    std::fflush(stdout);
  }
  return 0;
}
