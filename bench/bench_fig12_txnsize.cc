// Fig. 12 — Transaction overhead: throughput of PACT and ACT relative to
// non-transactional execution (NT), with concurrency control only and with
// CC + logging, across transaction sizes {2,4,8,16,32,64}; plus the ACT
// abort rate. Uniform distribution, 10K actors, pipeline 64 (§5.2.1).
//
// Expected shape (paper): at small txnsize both pay overhead vs NT (PACT
// pays more messaging per txn at low contention); as txnsize grows, ACT
// degrades sharply (conflicts, aborts approaching 90% at 64) while PACT
// amortizes batching; logging costs ACT more than PACT.
#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  const uint64_t kActors = 10000;
  struct Cell {
    double nt = 0, pact_cc = 0, pact_log = 0, act_cc = 0, act_log = 0;
    double act_abort = 0;
  };

  PrintHeader("Fig. 12: transaction overhead vs txnsize (uniform, 10K actors)");
  std::printf("%8s %10s %10s %10s %10s %10s %12s %12s\n", "txnsize", "NT",
              "PACT(cc)", "PACT(+log)", "ACT(cc)", "ACT(+log)",
              "ACT abort%", "PACT/NT");
  BenchJsonWriter json("fig12_txnsize");

  for (int txnsize : {2, 4, 8, 16, 32, 64}) {
    Cell cell;
    auto run = [&](TxnMode mode, bool logging) -> BenchResult {
      SnapperConfig config = harness::SnapperConfigForCores(4, logging);
      SnapperBankSilo silo(config);
      SmallBankWorkloadConfig workload;
      workload.actor_type = silo.actor_type;
      workload.num_actors = kActors;
      workload.txn_size = txnsize;
      workload.pact_fraction =
          mode == TxnMode::kPact ? 1.0 : 0.0;
      auto generator = MakeSmallBankGenerator(workload);
      if (mode == TxnMode::kNt) {
        auto inner = generator;
        generator = [inner](Rng& rng) {
          auto request = inner(rng);
          request.mode = TxnMode::kNt;
          return request;
        };
      }
      ClientConfig client = BenchClientConfig(mode, false, 64);
      return RunBench(client, generator, harness::SnapperSubmit(*silo.runtime));
    };

    cell.nt = run(TxnMode::kNt, false).Throughput();
    cell.pact_cc = run(TxnMode::kPact, false).Throughput();
    cell.pact_log = run(TxnMode::kPact, true).Throughput();
    cell.act_cc = run(TxnMode::kAct, false).Throughput();
    BenchResult act_log = run(TxnMode::kAct, true);
    cell.act_log = act_log.Throughput();
    cell.act_abort = act_log.AbortRate();

    std::printf("%8d %10.0f %10.0f %10.0f %10.0f %10.0f %11.1f%% %11.2f\n",
                txnsize, cell.nt, cell.pact_cc, cell.pact_log, cell.act_cc,
                cell.act_log, cell.act_abort * 100,
                cell.nt > 0 ? cell.pact_log / cell.nt : 0);
    std::fflush(stdout);
    json.AddRow({{"txnsize", txnsize},
                 {"nt_tps", cell.nt},
                 {"pact_cc_tps", cell.pact_cc},
                 {"pact_log_tps", cell.pact_log},
                 {"act_cc_tps", cell.act_cc},
                 {"act_log_tps", cell.act_log},
                 {"act_abort_rate", cell.act_abort}});
  }
  json.Write();
  return 0;
}
