// Fig. 17b — TPC-C scalability: PACT vs ACT NewOrder throughput as workers
// grow (2 warehouses per 4 workers, Fig. 11a), under low skew (many order
// partitions) and high skew (a single order partition per warehouse
// serializes every district's inserts).
//
// Expected shape (paper): both modes scale near-linearly at low skew; PACT
// beats ACT under high skew; both pay ~90% vs NT — the cost of logging whole
// actor-state blobs for insert-heavy tables (§5.4.2).
#include "bench_common.h"

int main() {
  using namespace snapper;
  using namespace snapper::bench;

  PrintHeader("Fig. 17b: TPC-C NewOrder scalability (CC+log)");
  BenchJsonWriter json("fig17b_scal_tpcc");

  for (size_t cores : BenchCoreCounts()) {
    const uint64_t warehouses = std::max<uint64_t>(1, (cores / 4) * 2 +
                                                          (cores % 4 ? 1 : 0));
    for (bool high_skew : {false, true}) {
      for (TxnMode mode : {TxnMode::kPact, TxnMode::kAct, TxnMode::kNt}) {
        SnapperTpccSilo silo(
            harness::SnapperConfigForCores(cores, mode != TxnMode::kNt));
        TpccWorkloadConfig workload;
        workload.types = silo.types;
        workload.layout.num_warehouses = warehouses;
        workload.layout.order_partitions_per_warehouse =
            high_skew ? 1 : workload.layout.districts_per_warehouse;
        workload.pact_fraction = mode == TxnMode::kAct ? 0.0 : 1.0;
        GeneratorFn generator = MakeTpccGenerator(workload);
        if (mode == TxnMode::kNt) {
          auto inner = generator;
          generator = [inner](Rng& rng) {
            auto request = inner(rng);
            request.mode = TxnMode::kNt;
            return request;
          };
        }
        // TPC-C transactions are ~15-actor heavyweights: smaller pipelines
        // than SmallBank's (Fig. 11b tunes pipelines per workload).
        ClientConfig client = BenchClientConfig(
            mode == TxnMode::kAct ? TxnMode::kAct : TxnMode::kPact, high_skew,
            mode == TxnMode::kAct ? 4 : 16);
        BenchResult r =
            RunBench(client, generator, harness::SnapperSubmit(*silo.runtime));
        char label[96];
        std::snprintf(label, sizeof(label), "%zu cores / %s / %s", cores,
                      high_skew ? "high-skew" : "low-skew",
                      mode == TxnMode::kPact  ? "PACT"
                      : mode == TxnMode::kAct ? "ACT"
                                              : "NT");
        PrintRow(label, r);
        // mode: 0=PACT 1=ACT 3=NT (matches fig17a's encoding).
        json.AddRow({{"cores", static_cast<double>(cores)},
                     {"high_skew", high_skew ? 1.0 : 0.0},
                     {"mode", mode == TxnMode::kPact  ? 0.0
                              : mode == TxnMode::kAct ? 1.0
                                                      : 3.0},
                     {"tps", r.Throughput()},
                     {"abort_rate", r.AbortRate()},
                     {"p50_ms", r.totals.latency.Quantile(0.5) / 1000.0},
                     {"p99_ms", r.totals.latency.Quantile(0.99) / 1000.0}});
      }
    }
  }
  json.Write();
  return 0;
}
