// Component microbenchmarks (google-benchmark): the building blocks under
// the figure benches — Value codec, CRC, zipf sampling, histogram, lock
// table, local schedule, WAL append, actor RPC round trip.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "actor/actor.h"
#include "async/task.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/value.h"
#include "snapper/local_schedule.h"
#include "snapper/lock_table.h"
#include "wal/logger.h"

namespace snapper {
namespace {

Value MakeBankState() {
  return Value(ValueMap{{"checking", Value(10000.0)},
                        {"savings", Value(10000.0)}});
}

void BM_ValueEncode(benchmark::State& state) {
  Value v = MakeBankState();
  for (auto _ : state) {
    std::string out = v.Encode();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ValueEncode);

void BM_ValueDecode(benchmark::State& state) {
  std::string encoded = MakeBankState().Encode();
  for (auto _ : state) {
    Value v = Value::Decode(encoded);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ValueDecode);

void BM_ValueCopy(benchmark::State& state) {
  Value v = MakeBankState();
  for (auto _ : state) {
    Value copy = v;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ValueCopy);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(0.9, static_cast<uint64_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(10000)->Arg(100000);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(2);
  for (auto _ : state) {
    h.Record(rng.Uniform(1000000));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_LockAcquireRelease(benchmark::State& state) {
  ActorLock lock;
  uint64_t tid = 1;
  for (auto _ : state) {
    auto f = lock.Acquire(tid, AccessMode::kReadWrite);
    benchmark::DoNotOptimize(f.ready());
    lock.Release(tid);
    tid++;
  }
}
BENCHMARK(BM_LockAcquireRelease);

void BM_ScheduleBatchLifecycle(benchmark::State& state) {
  LocalSchedule sched;
  uint64_t bid = 1;
  uint64_t prev = kNoBid;
  for (auto _ : state) {
    BatchMsg msg;
    msg.bid = bid;
    msg.prev_bid = prev;
    msg.entries.push_back(SubBatchEntry{bid, 1});
    sched.AddBatch(std::move(msg));
    auto gate = sched.WaitPactTurn(bid, bid);
    benchmark::DoNotOptimize(gate.ready());
    sched.CompletePactAccess(bid, bid);
    sched.MarkBatchCommitted(bid);
    prev = bid;
    bid++;
  }
}
BENCHMARK(BM_ScheduleBatchLifecycle);

void BM_WalAppend(benchmark::State& state) {
  Executor executor(2);
  MemEnv env;
  Logger logger("bm.log", &env, std::make_shared<Strand>(&executor));
  LogRecord record;
  record.type = LogRecordType::kBatchComplete;
  record.actor = ActorId{1, 1};
  record.state = std::string(static_cast<size_t>(state.range(0)), 's');
  for (auto _ : state) {
    record.id++;
    logger.Append(record).Get();
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  executor.Stop();
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024);

class PingActor : public ActorBase {
 public:
  Task<int64_t> Ping(int64_t v) { co_return v + 1; }
};

void BM_ActorRpcRoundTrip(benchmark::State& state) {
  ActorRuntime runtime(ActorRuntime::Options{.num_workers = 2});
  uint32_t type = runtime.RegisterType(
      "Ping", [](uint64_t) { return std::make_shared<PingActor>(); });
  ActorId id{type, 1};
  int64_t v = 0;
  for (auto _ : state) {
    v = runtime.Call<PingActor>(id, [v](PingActor& a) { return a.Ping(v); })
            .Get();
  }
  benchmark::DoNotOptimize(v);
}
BENCHMARK(BM_ActorRpcRoundTrip);

}  // namespace
}  // namespace snapper

// Like BENCHMARK_MAIN(), but defaults to writing a committed JSON snapshot
// (bench_results/BENCH_micro.json) unless the caller already passed
// --benchmark_out. Run from the repo root so the relative path resolves.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
      break;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=bench_results/BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
